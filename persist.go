package gkmeans

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"gkmeans/internal/checked"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/router"
	"gkmeans/internal/store"
	"gkmeans/internal/vec"
)

// Whole-index persistence: a versioned container (".gkx") holding the
// dataset, the k-NN graph(s) (reusing the knngraph wire format as embedded
// sections) and the optional Build-time clustering. Derived search
// structures (adjacency, entry points) are rebuilt on load from the
// persisted entry-point count, so a loaded index answers queries
// identically to the saved one.
//
// Version 1 — single segment (all little-endian):
//
//	uint32  magic "GKIX"
//	uint32  format version (1)
//	uint32  flags (bit 0: clustering section present)
//	uint32  requested entry points (0 = default)
//	matrix  dataset            (vec.WriteMatrix)
//	section k-NN graph         (knngraph.WriteSection)
//	[clustering: uint32 k, uint32 iters, n×int32 labels,
//	             matrix centroids]
//
// Version 2 — multi-segment, written for sharded indexes (WithShards):
//
//	uint32  magic "GKIX"
//	uint32  format version (2)
//	uint32  flags (bit 1: sharded — required in v2)
//	uint32  requested entry points (0 = default)
//	uint32  shard count (>= 2)
//	uint32  reserved (0)
//	matrix  full dataset       (vec.WriteMatrix; shards are row ranges)
//	segment table: per shard {uint32 rows, 4 pad bytes, uint64 segment size}
//	per shard: k-NN graph segment (knngraph.WriteSection, exactly
//	           "segment size" bytes over "rows" contiguous dataset rows)
//
// Version 3 — mutable: written when the index carries mutation state
// (tombstones, id maps, generations, an id bound past the row count, or a
// single-shard sharded form, all products of Append/Delete/Compact):
//
//	uint32  magic "GKIX"
//	uint32  format version (3)
//	uint32  flags (bit 1: sharded form, bit 2: tombstones present)
//	uint32  requested entry points (0 = default)
//	uint32  segment count (>= 1)
//	uint32  id bound (lowest never-assigned external id, >= row count)
//	matrix  full dataset       (vec.WriteMatrix)
//	segment table: per segment {uint32 rows, uint32 seg flags,
//	               uint64 graph size, uint64 generation, uint32 base,
//	               4 pad bytes}
//	per segment: k-NN graph segment (knngraph.WriteSection, exactly
//	             "graph size" bytes), then — when the segment flags say
//	             so — ceil(rows/64) uint64 tombstone words (bit set =
//	             row deleted) and rows int32 external ids (the id map of
//	             a compacted segment; absent segments use base + row)
//
// Version 4 — routed: written when the index carries a shard router
// (WithRouting). The body is exactly the v3 layout (the sharded flag is
// required — only sharded indexes route), followed by one routing trailer:
//
//	uint32  routing centroids per shard (k, >= 1)
//	per segment: matrix of routing centroids (vec.WriteMatrix,
//	             1 <= rows <= min(k, segment rows), segment dimensionality)
//
// Version 5 — uint8: written for every index whose dataset is bytes
// (WithDType(DTypeUint8)/BuildU8), monolithic, sharded, mutated or routed.
// The layout is the v3/v4 shape with a dtype word inserted ahead of the
// segment count and the dataset stored as raw bytes:
//
//	uint32  magic "GKIX"
//	uint32  format version (5)
//	uint32  flags (bit 1: sharded, bit 2: tombstones, bit 3: routed,
//	        bit 4: uint8 — required in v5)
//	uint32  requested entry points (0 = default)
//	uint32  dtype word (1 = uint8; the only value v5 defines)
//	uint32  segment count (>= 1)
//	uint32  id bound
//	matrix  full uint8 dataset  (vec.WriteU8Matrix)
//	segment table + per-segment bodies exactly as v3
//	[routing trailer exactly as v4, when bit 3 is set]
//
// The segment table states every segment's exact byte size up front, so a
// reader can locate, skip or parallel-load segments without parsing them,
// and a truncated or inconsistent file fails with a clear error instead of
// a misaligned read. Loaders accept all five versions; writers emit v1
// for plain monolithic indexes and v2 for plain sharded ones (older
// readers keep working, and saving an unmutated, unrouted index stays
// byte-stable across this change), reserving v3 for indexes that actually
// carry mutation state, v4 for routed ones and v5 for uint8 datasets (a
// float32 index never writes v5, so every pre-existing file stays
// byte-stable). See ARCHITECTURE.md for the full format reference.
const (
	indexMagic          = uint32(0x474b4958) // "GKIX"
	indexVersionSingle  = uint32(1)
	indexVersionSharded = uint32(2)
	indexVersionMutable = uint32(3)
	indexVersionRouted  = uint32(4)
	indexVersionU8      = uint32(5)

	flagClusters = uint32(1 << 0)
	flagSharded  = uint32(1 << 1)
	flagTombs    = uint32(1 << 2)
	flagRouting  = uint32(1 << 3)
	flagU8       = uint32(1 << 4)

	// dtypeWordU8 is the value of the v5 header's dtype word. float32 has
	// no word (v1–v4 predate it); new element types would claim 2, 3, ….
	dtypeWordU8 = uint32(1)

	// Per-segment flags of the v3 segment table.
	segFlagTombs = uint32(1 << 0)
	segFlagIDMap = uint32(1 << 1)

	// maxShardSegments bounds the segment-table allocation against corrupt
	// headers; it is far above any sane shard count (every shard needs at
	// least minShardRows rows anyway).
	maxShardSegments = 1 << 20
)

// segmentEntry is one row of the v2 segment table. The blank field keeps
// the uint64 naturally aligned and the entry a round 16 bytes.
type segmentEntry struct {
	Rows uint32
	_    uint32
	Size uint64 // segment byte count (the shard's graph section)
}

// segmentEntryV3 is one row of the v3 segment table: the v2 fields plus
// the segment's mutation metadata. The blank field pads the entry to a
// round 32 bytes.
type segmentEntryV3 struct {
	Rows  uint32
	Flags uint32 // segFlagTombs, segFlagIDMap
	Size  uint64 // graph section byte count
	Gen   uint64 // build generation
	Base  uint32 // first external id (unused when an id map is present)
	_     uint32
}

// countingWriter tracks bytes written so WriteTo can satisfy io.WriterTo.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// countingReader tracks bytes consumed so the v2 loader can verify each
// segment used exactly the bytes its table entry declared.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// diskEntries normalises the requested entry-point count for the header:
// any non-positive request means "default" and is stored as 0. An absurd
// request beyond uint32 is clamped — the searcher caps entry points at the
// dataset size anyway, so the loaded index behaves identically.
func (x *Index) diskEntries() uint32 {
	if x.cfg.entries < 0 {
		return 0
	}
	if int64(x.cfg.entries) > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(x.cfg.entries)
}

// needsV3 reports whether the index carries mutation state only the v3
// layout can express: tombstones, id maps, nonzero generations, an id
// bound past the row count, or the single-shard sharded form Compact can
// produce (v2 requires >= 2 segments).
func (x *Index) needsV3() bool {
	if x.Deleted() > 0 {
		return true
	}
	for _, m := range x.shardIDs {
		if m != nil {
			return true
		}
	}
	for _, g := range x.shardGen {
		if g != 0 {
			return true
		}
	}
	if x.nextID != 0 && int(x.nextID) != x.rows() {
		return true
	}
	return x.Sharded() && len(x.shards) == 1
}

// WriteTo serialises the whole index to w and returns the number of bytes
// written. It implements io.WriterTo. Plain monolithic indexes write the
// v1 single-segment layout and plain sharded ones the v2 multi-segment
// one; an index carrying mutation state writes v3, a routed one
// (WithRouting, always sharded) writes v4, and a uint8 index — whatever
// its shape — writes v5, the only layout with a byte dataset.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if x.u8 != nil {
		err := x.writeMutable(cw, indexVersionU8)
		return cw.n, err
	}
	if x.route != nil {
		err := x.writeMutable(cw, indexVersionRouted)
		return cw.n, err
	}
	if x.needsV3() {
		err := x.writeMutable(cw, indexVersionMutable)
		return cw.n, err
	}
	if x.Sharded() {
		err := x.writeSharded(cw)
		return cw.n, err
	}
	var flags uint32
	if x.clusters != nil {
		flags |= flagClusters
	}
	hdr := []uint32{indexMagic, indexVersionSingle, flags, x.diskEntries()}
	if err := binary.Write(cw, binary.LittleEndian, hdr); err != nil {
		return cw.n, err
	}
	if _, err := vec.WriteMatrix(cw, x.data); err != nil {
		return cw.n, err
	}
	if _, err := x.graph.WriteSection(cw); err != nil {
		return cw.n, err
	}
	if x.clusters != nil {
		c := x.clusters
		if err := binary.Write(cw, binary.LittleEndian, []uint32{checked.U32(c.K), checked.U32(c.Iters)}); err != nil {
			return cw.n, err
		}
		labels := make([]int32, len(c.Labels))
		for i, l := range c.Labels {
			labels[i] = checked.Int32(l)
		}
		if err := binary.Write(cw, binary.LittleEndian, labels); err != nil {
			return cw.n, err
		}
		if _, err := vec.WriteMatrix(cw, c.Centroids); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// writeSharded emits the v2 multi-segment layout: the full dataset once,
// then one graph segment per shard, preceded by the table of exact segment
// sizes (computable up front from the graphs' encoded sizes).
func (x *Index) writeSharded(cw *countingWriter) error {
	hdr := []uint32{indexMagic, indexVersionSharded, flagSharded, x.diskEntries(),
		checked.U32(len(x.shards)), 0}
	if err := binary.Write(cw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if _, err := vec.WriteMatrix(cw, x.data); err != nil {
		return err
	}
	table := make([]segmentEntry, len(x.shards))
	for s, shard := range x.shards {
		table[s] = segmentEntry{Rows: checked.U32(shard.N()), Size: uint64(shard.graph.SectionSize())}
	}
	if err := binary.Write(cw, binary.LittleEndian, table); err != nil {
		return err
	}
	for s, shard := range x.shards {
		before := cw.n
		if _, err := shard.graph.WriteSection(cw); err != nil {
			return err
		}
		if got := uint64(cw.n - before); got != table[s].Size {
			return fmt.Errorf("gkmeans: internal error: shard %d segment wrote %d bytes, table says %d", s, got, table[s].Size)
		}
	}
	return nil
}

// writeMutable emits the mutable layout (version indexVersionMutable), its
// routed extension (indexVersionRouted) or the uint8 layout
// (indexVersionU8): the v2 shape extended with the id bound in the header
// and per-segment generation, base, tombstone bitmap and id map; v4
// appends the routing-centroid trailer. v5 inserts a dtype word ahead of
// the segment count, stores the dataset as raw bytes, and carries the
// routing trailer exactly when the index routes. A monolithic index writes
// one segment without the sharded flag.
func (x *Index) writeMutable(cw *countingWriter, version uint32) error {
	if x.clusters != nil {
		// Unreachable: every mutation drops or refuses a clustering.
		return fmt.Errorf("gkmeans: internal error: mutated index carries a clustering")
	}
	routed := version == indexVersionRouted || (version == indexVersionU8 && x.route != nil)
	segs := x.shardCount()
	flags := uint32(0)
	if x.Sharded() {
		flags |= flagSharded
	}
	if x.Deleted() > 0 {
		flags |= flagTombs
	}
	if routed {
		flags |= flagRouting
	}
	hdr := []uint32{indexMagic, version, flags, x.diskEntries()}
	if version == indexVersionU8 {
		hdr[2] |= flagU8
		hdr = append(hdr, dtypeWordU8)
	}
	hdr = append(hdr, checked.U32(segs), uint32(x.idBound()))
	if err := binary.Write(cw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if version == indexVersionU8 {
		if _, err := vec.WriteU8Matrix(cw, x.u8); err != nil {
			return err
		}
	} else if _, err := vec.WriteMatrix(cw, x.data); err != nil {
		return err
	}
	graphOf := func(s int) *knngraph.Graph {
		if x.Sharded() {
			return x.shards[s].graph
		}
		return x.graph
	}
	table := make([]segmentEntryV3, segs)
	for s := range table {
		e := segmentEntryV3{
			Rows: checked.U32(x.shardRows(s)),
			Size: uint64(graphOf(s).SectionSize()),
			Gen:  x.shardGeneration(s),
			Base: uint32(x.shardBaseOf(s)),
		}
		if t := x.shardTomb(s); t != nil && t.Count() > 0 {
			e.Flags |= segFlagTombs
		}
		if x.shardIDMap(s) != nil {
			e.Flags |= segFlagIDMap
		}
		table[s] = e
	}
	if err := binary.Write(cw, binary.LittleEndian, table); err != nil {
		return err
	}
	for s, e := range table {
		before := cw.n
		if _, err := graphOf(s).WriteSection(cw); err != nil {
			return err
		}
		if got := uint64(cw.n - before); got != e.Size {
			return fmt.Errorf("gkmeans: internal error: segment %d wrote %d bytes, table says %d", s, got, e.Size)
		}
		if e.Flags&segFlagTombs != 0 {
			if err := binary.Write(cw, binary.LittleEndian, x.shardTomb(s).Words()); err != nil {
				return err
			}
		}
		if e.Flags&segFlagIDMap != 0 {
			if err := binary.Write(cw, binary.LittleEndian, x.shardIDMap(s)); err != nil {
				return err
			}
		}
	}
	if routed {
		if err := binary.Write(cw, binary.LittleEndian, checked.U32(x.route.K())); err != nil {
			return err
		}
		for s := 0; s < segs; s++ {
			if _, err := vec.WriteMatrix(cw, x.route.Centroids(s)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadIndexFrom deserialises an index written by WriteTo — either layout
// version. The loaded index is immediately ready for Search, SearchBatch
// and (when monolithic) Cluster, and answers searches identically to the
// index that was saved.
func ReadIndexFrom(r io.Reader) (*Index, error) {
	hdr := make([]uint32, 4)
	if err := binary.Read(r, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("gkmeans: reading index header: %w", err)
	}
	if hdr[0] != indexMagic {
		return nil, fmt.Errorf("gkmeans: bad index magic %#x", hdr[0])
	}
	flags, entries := hdr[2], int(hdr[3])
	switch hdr[1] {
	case indexVersionSingle:
		return readSingle(r, flags, entries)
	case indexVersionSharded:
		return readSharded(r, flags, entries)
	case indexVersionMutable, indexVersionRouted, indexVersionU8:
		return readMutable(r, hdr[1], flags, entries)
	}
	return nil, fmt.Errorf("gkmeans: unsupported index version %d (want %d, %d, %d, %d or %d)",
		hdr[1], indexVersionSingle, indexVersionSharded, indexVersionMutable, indexVersionRouted, indexVersionU8)
}

// readSingle loads the body of a v1 single-segment container.
func readSingle(r io.Reader, flags uint32, entries int) (*Index, error) {
	if flags&flagU8 != 0 {
		return nil, fmt.Errorf("gkmeans: v1 index with the uint8 flag — dtype/flag mismatch (flags %#x)", flags)
	}
	data, err := vec.ReadMatrix(r)
	if err != nil {
		return nil, err
	}
	g, err := knngraph.ReadSection(r)
	if err != nil {
		return nil, err
	}
	x, err := NewIndex(data, g, WithEntryPoints(entries))
	if err != nil {
		return nil, err
	}
	if flags&flagClusters != 0 {
		var ck [2]uint32
		if err := binary.Read(r, binary.LittleEndian, ck[:]); err != nil {
			return nil, fmt.Errorf("gkmeans: reading clustering header: %w", err)
		}
		labels32 := make([]int32, data.N)
		if err := binary.Read(r, binary.LittleEndian, labels32); err != nil {
			return nil, fmt.Errorf("gkmeans: reading labels: %w", err)
		}
		labels := make([]int, len(labels32))
		for i, l := range labels32 {
			labels[i] = int(l)
		}
		centroids, err := vec.ReadMatrix(r)
		if err != nil {
			return nil, err
		}
		res := &Result{Labels: labels, Centroids: centroids, K: int(ck[0]), Iters: int(ck[1]), Graph: g}
		if err := res.Validate(data); err != nil {
			return nil, fmt.Errorf("gkmeans: corrupt clustering section: %w", err)
		}
		x.clusters = res
	}
	return x, nil
}

// readSharded loads the body of a v2 multi-segment container: the full
// dataset, the segment table, then one graph segment per shard, each
// checked against the table's declared row count and byte size.
func readSharded(r io.Reader, flags uint32, entries int) (*Index, error) {
	if flags&flagSharded == 0 {
		return nil, fmt.Errorf("gkmeans: v2 index without the sharded flag (flags %#x)", flags)
	}
	if flags&flagU8 != 0 {
		return nil, fmt.Errorf("gkmeans: v2 index with the uint8 flag — dtype/flag mismatch (flags %#x)", flags)
	}
	var tail [2]uint32
	if err := binary.Read(r, binary.LittleEndian, tail[:]); err != nil {
		return nil, fmt.Errorf("gkmeans: reading sharded header: %w", err)
	}
	nShards := int(tail[0])
	if nShards < 2 || nShards > maxShardSegments {
		return nil, fmt.Errorf("gkmeans: implausible shard count %d", nShards)
	}
	data, err := vec.ReadMatrix(r)
	if err != nil {
		return nil, err
	}
	table := make([]segmentEntry, nShards)
	if err := binary.Read(r, binary.LittleEndian, table); err != nil {
		return nil, fmt.Errorf("gkmeans: reading segment table: %w", err)
	}
	totalRows := int64(0)
	for _, e := range table {
		totalRows += int64(e.Rows)
	}
	if totalRows != int64(data.N) {
		return nil, fmt.Errorf("gkmeans: segment table covers %d rows, dataset has %d (shard-count mismatch or corrupt table)",
			totalRows, data.N)
	}
	cr := &countingReader{r: r}
	shards := make([]*Index, nShards)
	row := 0
	for s, e := range table {
		rows := int(e.Rows)
		before := cr.n
		g, err := knngraph.ReadSection(cr)
		if err != nil {
			return nil, fmt.Errorf("gkmeans: reading shard %d segment: %w", s, err)
		}
		if got := uint64(cr.n - before); got != e.Size {
			return nil, fmt.Errorf("gkmeans: shard %d segment consumed %d bytes, table says %d", s, got, e.Size)
		}
		shard, err := NewIndex(shardView(data, row, row+rows), g, WithEntryPoints(entries))
		if err != nil {
			return nil, fmt.Errorf("gkmeans: shard %d: %w", s, err)
		}
		shards[s] = shard
		row += rows
	}
	return newShardedIndex(data, nil, shards, config{entries: entries, shards: nShards}), nil
}

// readMutable loads the body of a v3 mutable container, a v4 routed one or
// a v5 uint8 one. Every piece of mutation and routing metadata is
// validated against the dataset and the id bound: a corrupt file fails
// loudly instead of producing an index whose ids alias, whose tombstones
// cover rows that do not exist, or whose routing centroids have the wrong
// shape. A v5 container additionally pins its dtype twice — the flagU8 bit
// and the dtype word must both say uint8 — so a flipped bit cannot make a
// byte dataset parse as floats or vice versa.
func readMutable(r io.Reader, version, flags uint32, entries int) (*Index, error) {
	isU8 := version == indexVersionU8
	routed := version == indexVersionRouted || (isU8 && flags&flagRouting != 0)
	switch {
	case version == indexVersionMutable && flags&flagRouting != 0:
		return nil, fmt.Errorf("gkmeans: v3 index with the routing flag (flags %#x)", flags)
	case version == indexVersionRouted && flags&flagRouting == 0:
		return nil, fmt.Errorf("gkmeans: v4 index without the routing flag (flags %#x)", flags)
	case !isU8 && flags&flagU8 != 0:
		return nil, fmt.Errorf("gkmeans: v%d index with the uint8 flag — dtype/flag mismatch (flags %#x)", version, flags)
	case isU8 && flags&flagU8 == 0:
		return nil, fmt.Errorf("gkmeans: v5 index without the uint8 flag — dtype/flag mismatch (flags %#x)", flags)
	}
	if routed && flags&flagSharded == 0 {
		return nil, fmt.Errorf("gkmeans: routed index without the sharded flag (flags %#x)", flags)
	}
	if isU8 {
		var dtype uint32
		if err := binary.Read(r, binary.LittleEndian, &dtype); err != nil {
			return nil, fmt.Errorf("gkmeans: reading dtype word: %w", err)
		}
		if dtype != dtypeWordU8 {
			return nil, fmt.Errorf("gkmeans: bad dtype word %d (a v5 container stores uint8, word %d)", dtype, dtypeWordU8)
		}
	}
	var tail [2]uint32
	if err := binary.Read(r, binary.LittleEndian, tail[:]); err != nil {
		return nil, fmt.Errorf("gkmeans: reading mutable header: %w", err)
	}
	segs := int(tail[0])
	if segs < 1 || segs > maxShardSegments {
		return nil, fmt.Errorf("gkmeans: implausible segment count %d", segs)
	}
	if flags&flagSharded == 0 && segs != 1 {
		return nil, fmt.Errorf("gkmeans: monolithic v%d index with %d segments", version, segs)
	}
	if tail[1] > math.MaxInt32 {
		return nil, fmt.Errorf("gkmeans: id bound %d overflows int32", tail[1])
	}
	nextID := int32(tail[1])
	var data *vec.Matrix
	var u8 *vec.U8Matrix
	var dataN, dataDim int
	if isU8 {
		m, err := vec.ReadU8Matrix(r)
		if err != nil {
			return nil, err
		}
		u8, dataN, dataDim = m, m.N, m.Dim
	} else {
		m, err := vec.ReadMatrix(r)
		if err != nil {
			return nil, err
		}
		data, dataN, dataDim = m, m.N, m.Dim
	}
	if int64(nextID) < int64(dataN) {
		return nil, fmt.Errorf("gkmeans: id bound %d below row count %d", nextID, dataN)
	}
	table := make([]segmentEntryV3, segs)
	if err := binary.Read(r, binary.LittleEndian, table); err != nil {
		return nil, fmt.Errorf("gkmeans: reading segment table: %w", err)
	}
	totalRows := int64(0)
	for _, e := range table {
		totalRows += int64(e.Rows)
	}
	if totalRows != int64(dataN) {
		return nil, fmt.Errorf("gkmeans: segment table covers %d rows, dataset has %d", totalRows, dataN)
	}
	cr := &countingReader{r: r}
	shards := make([]*Index, segs)
	bases := make([]int32, segs)
	idmaps := make([][]int32, segs)
	gens := make([]uint64, segs)
	tombs := make([]*store.Bits, segs)
	row := 0
	for s, e := range table {
		rows := int(e.Rows)
		if e.Flags&^(segFlagTombs|segFlagIDMap) != 0 {
			return nil, fmt.Errorf("gkmeans: segment %d has unknown flags %#x", s, e.Flags)
		}
		if e.Base > math.MaxInt32 {
			return nil, fmt.Errorf("gkmeans: segment %d base %d overflows int32", s, e.Base)
		}
		before := cr.n
		g, err := knngraph.ReadSection(cr)
		if err != nil {
			return nil, fmt.Errorf("gkmeans: reading segment %d: %w", s, err)
		}
		if got := uint64(cr.n - before); got != e.Size {
			return nil, fmt.Errorf("gkmeans: segment %d consumed %d bytes, table says %d", s, got, e.Size)
		}
		if e.Flags&segFlagTombs != 0 {
			words := make([]uint64, (rows+63)/64)
			if err := binary.Read(cr, binary.LittleEndian, words); err != nil {
				return nil, fmt.Errorf("gkmeans: reading segment %d tombstones: %w", s, err)
			}
			t, err := store.BitsFromWords(rows, words)
			if err != nil {
				return nil, fmt.Errorf("gkmeans: segment %d: %w", s, err)
			}
			tombs[s] = t
		}
		if e.Flags&segFlagIDMap != 0 {
			if flags&flagSharded == 0 {
				return nil, fmt.Errorf("gkmeans: monolithic v%d index with an id map", version)
			}
			ids := make([]int32, rows)
			if err := binary.Read(cr, binary.LittleEndian, ids); err != nil {
				return nil, fmt.Errorf("gkmeans: reading segment %d id map: %w", s, err)
			}
			for l, id := range ids {
				if id < 0 || id >= nextID {
					return nil, fmt.Errorf("gkmeans: segment %d maps row %d to id %d, outside [0,%d)", s, l, id, nextID)
				}
			}
			idmaps[s] = ids
			if rows > 0 {
				bases[s] = ids[0]
			}
		} else {
			if int64(e.Base)+int64(rows) > int64(nextID) {
				return nil, fmt.Errorf("gkmeans: segment %d ids %d..%d exceed the id bound %d", s, e.Base, int64(e.Base)+int64(rows), nextID)
			}
			bases[s] = int32(e.Base)
		}
		gens[s] = e.Gen
		var shard *Index
		if isU8 {
			shard, err = newU8Index(shardViewU8(u8, row, row+rows), g, config{entries: entries})
		} else {
			shard, err = NewIndex(shardView(data, row, row+rows), g, WithEntryPoints(entries))
		}
		if err != nil {
			return nil, fmt.Errorf("gkmeans: segment %d: %w", s, err)
		}
		shards[s] = shard
		row += rows
	}
	if flags&flagSharded == 0 {
		if table[0].Base != 0 {
			return nil, fmt.Errorf("gkmeans: monolithic v%d index with base %d", version, table[0].Base)
		}
		x := shards[0]
		x.tombs = tombs
		if gens[0] != 0 {
			x.shardGen = gens
		}
		x.nextID = nextID
		return x, nil
	}
	cfg := config{entries: entries, shards: segs}
	if isU8 {
		cfg.dtype = DTypeUint8
	}
	x := &Index{
		data: data, u8: u8, shards: shards, shardBase: bases, shardIDs: idmaps,
		shardGen: gens, tombs: tombs, nextID: nextID,
		probes: &probeStats{},
		cfg:    cfg,
	}
	if routed {
		var k32 uint32
		if err := binary.Read(cr, binary.LittleEndian, &k32); err != nil {
			return nil, fmt.Errorf("gkmeans: reading routing header: %w", err)
		}
		if k32 < 1 || k32 > math.MaxInt32 {
			return nil, fmt.Errorf("gkmeans: implausible routing centroid count %d per shard", k32)
		}
		k := int(k32)
		cents := make([]*vec.Matrix, segs)
		for s := range cents {
			m, err := vec.ReadMatrix(cr)
			if err != nil {
				return nil, fmt.Errorf("gkmeans: reading segment %d routing centroids: %w", s, err)
			}
			if m.Dim != dataDim {
				return nil, fmt.Errorf("gkmeans: segment %d routing centroids are %d-dimensional, data is %d-dimensional", s, m.Dim, dataDim)
			}
			if want := int(table[s].Rows); m.N > k || m.N > want || m.N < 1 {
				return nil, fmt.Errorf("gkmeans: segment %d has %d routing centroids for %d rows (config %d per shard)", s, m.N, want, k)
			}
			cents[s] = m
		}
		route, err := router.New(k, dataDim, cents)
		if err != nil {
			return nil, fmt.Errorf("gkmeans: corrupt routing section: %w", err)
		}
		x.route = route
		x.cfg.routing = k
	}
	return x, nil
}

// writeFileAtomic writes through a temporary file in path's directory and
// renames it into place only after every byte is down and the file is
// closed. A failed or interrupted write therefore never leaves a truncated
// file at path (which a later gkserved -index would refuse to load) — the
// previous contents, if any, survive intact and the temporary is removed.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// CreateTemp opens 0600; widen to the 0644 a plain os.Create would
	// typically produce, so an index saved by a build pipeline stays
	// readable by a separate serving user.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SaveIndex writes the index to a file on disk, atomically: the index is
// serialised to a temporary file next to path and renamed into place, so a
// mid-write failure cannot leave a truncated index behind.
func SaveIndex(path string, x *Index) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		_, err := x.WriteTo(w)
		return err
	})
}

// LoadIndex reads an index from a file written by SaveIndex.
func LoadIndex(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndexFrom(f)
}
