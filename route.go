package gkmeans

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"gkmeans/internal/checked"
	"gkmeans/internal/kmeans"
	"gkmeans/internal/router"
	"gkmeans/internal/splitmix"
	"gkmeans/internal/vec"
)

// Routed fan-out: a WithRouting build attaches a router.Table of per-shard
// centroids to the index, and SearchNProbe/SearchBatchNProbe use it to
// probe only the nprobe shards whose centroids are closest to a query —
// the IVF-style trade that turns sharding from an implicit work multiplier
// (every shard spends the full ef budget) into a genuine latency win.
//
// Routing changes how Build partitions the data. The unrouted path slices
// rows in input order, which is fine for a broadcast but useless for
// routing when the input order is arbitrary: statistically identical
// shards make every shard equally close to every query, so skipping any of
// them just discards recall. A routed build therefore first groups similar
// rows into the same shard with a two-level clustering pass (see
// routePartition), reorders the parent matrix so each group is one
// contiguous shard, and keeps per-shard id maps so external ids still name
// the original input rows (the same machinery a compacted shard uses).

// saltRouting tags the splitmix streams that seed the routing layer —
// the coarse partition and every shard's centroid build — away from the
// graph-construction and clustering streams.
const saltRouting uint64 = 0x524f5554 // "ROUT"

// routePartitionMaxIter caps the partitioning k-means passes. The
// partition only needs shards that are spatially coherent, not a converged
// clustering.
const routePartitionMaxIter = 16

// routeOversample is the micro-cluster multiplier of the two-level
// partition: the data is first clustered into up to nShards*routeOversample
// micro-clusters, and whole micro-clusters are then grouped into shards.
// 64 puts the micro resolution at the latent-cluster scale of the bench
// corpora (≈250 mixture components at 50k rows), where the partition
// captures >99% of true 10-NN mass in the top-2 routed shards; 16 left
// micro-clusters spanning several latent clusters and a ~2% recall gap.
const routeOversample = 64

// routeSlackNum/routeSlackDen is the shard capacity slack of the balanced
// grouping (11/10 = 10%): no shard accepts micro-clusters past
// ceil(N·slack/nShards) rows, so spatial preference can never collapse
// the partition into one mega-shard (whose ef-bounded graph search would
// tank recall for every query).
const (
	routeSlackNum = 11
	routeSlackDen = 10
)

// routingSeed derives the deterministic seed of one shard's centroid
// build from the index seed, the shard's build generation and its slot, so
// Build, Append and Compact shards all get stable, decorrelated streams.
func routingSeed(seed int64, gen uint64, slot int) int64 {
	s := splitmix.New(seed, saltRouting, gen, uint64(slot))
	return s.Int63()
}

// partitionSeed derives the seed of one partition level. The salt layout
// (two salts vs routingSeed's three) keeps both levels distinct from every
// routingSeed stream.
func partitionSeed(seed int64, level uint64) int64 {
	s := splitmix.New(seed, saltRouting, level)
	return s.Int63()
}

// probeStats counts the routing work of a sharded index. The pointer is
// shared across copy-on-write mutations (Append/Delete/Compact clones),
// so serving layers see monotone counters across index swaps.
type probeStats struct {
	queries    atomic.Uint64 // sharded queries answered
	probed     atomic.Uint64 // shard searches actually executed
	routed     atomic.Uint64 // queries where routing skipped >= 1 shard
	routeComps atomic.Uint64 // centroid distance computations spent ranking
}

// noteProbe records one sharded query that searched np of total shards,
// spending comps centroid distance computations on ranking (0 on the full
// fan-out, which skips the router entirely).
func (x *Index) noteProbe(np, total, comps int) {
	p := x.probes
	if p == nil {
		return
	}
	p.queries.Add(1)
	p.probed.Add(uint64(np))
	if np < total {
		p.routed.Add(1)
		p.routeComps.Add(uint64(comps))
	}
}

// Routed reports whether the index carries a shard router (WithRouting).
func (x *Index) Routed() bool { return x.route != nil }

// RoutingCentroids returns the configured routing centroids per shard, or
// 0 for an unrouted index.
func (x *Index) RoutingCentroids() int {
	if x.route == nil {
		return 0
	}
	return x.route.K()
}

// resolveNProbe resolves a per-call nprobe against the index: a positive
// per-call value wins, then the WithNProbe default, and anything
// non-positive, at or past the shard count, or on an unrouted index means
// "probe every shard" — the path that stays bit-identical to the unrouted
// full fan-out.
func (x *Index) resolveNProbe(perQuery int) int {
	n := len(x.shards)
	np := perQuery
	if np <= 0 {
		np = x.cfg.nprobe
	}
	if x.route == nil || np <= 0 || np >= n {
		return n
	}
	return np
}

// routePartition groups the rows of data into nShards spatially coherent,
// size-balanced groups: groups[s] lists the original row indices of shard
// s, each ascending. The partition is two-level — a micro-clustering pass
// (up to nShards*routeOversample centres) followed by a balanced grouping
// of whole micro-clusters onto nShards k-means anchors. A single coarse
// K=nShards pass assigns every row independently, so each dense
// neighbourhood near a boundary is split across shards and its queries
// lose recall under routing; grouping whole micro-clusters moves the cuts
// to micro-cluster borders instead. The grouping is capacity-capped
// (routeSlack) because a plain k-means over the micro-centroids is blind
// to cluster mass and can drop nearly the whole corpus into one shard.
// Every group is finally repaired up to minShardRows (stealing from the
// largest group, deterministically) so each shard can carry a graph.
// Deterministic at any worker count.
func routePartition(data *Matrix, cfg config, nShards int) ([][]int, error) {
	k1 := nShards * routeOversample
	if max := data.N / minShardRows; k1 > max {
		k1 = max
	}
	if k1 < nShards {
		k1 = nShards
	}
	micro, err := kmeans.Lloyd(data, kmeans.Config{
		K:        k1,
		MaxIter:  routePartitionMaxIter,
		Seed:     partitionSeed(cfg.seed, 0),
		Workers:  cfg.workers,
		PlusPlus: true,
	})
	if err != nil {
		return nil, fmt.Errorf("gkmeans: routing partition: %w", err)
	}
	shardOf := make([]int, k1)
	if k1 == nShards {
		for c := range shardOf {
			shardOf[c] = c
		}
	} else {
		anchors, err := kmeans.Lloyd(micro.Centroids, kmeans.Config{
			K:        nShards,
			MaxIter:  routePartitionMaxIter,
			Seed:     partitionSeed(cfg.seed, 1),
			Workers:  cfg.workers,
			PlusPlus: true,
		})
		if err != nil {
			return nil, fmt.Errorf("gkmeans: routing partition (grouping): %w", err)
		}
		assignBalanced(shardOf, micro, anchors.Centroids, data.N, nShards)
	}
	groups := make([][]int, nShards)
	for i, l := range micro.Labels {
		groups[shardOf[l]] = append(groups[shardOf[l]], i)
	}
	for s := range groups {
		for len(groups[s]) < minShardRows {
			donor := -1
			for t := range groups {
				if t == s || len(groups[t]) <= minShardRows {
					continue
				}
				if donor < 0 || len(groups[t]) > len(groups[donor]) {
					donor = t
				}
			}
			if donor < 0 {
				// Unreachable: clampShards guarantees minShardRows rows per
				// shard exist in total.
				return nil, fmt.Errorf("gkmeans: routing partition cannot fill shard %d to %d rows", s, minShardRows)
			}
			g := groups[donor]
			groups[s] = append(groups[s], g[len(g)-1])
			groups[donor] = g[:len(g)-1]
		}
		sort.Ints(groups[s])
	}
	return groups, nil
}

// assignBalanced fills shardOf, mapping each of micro's clusters to the
// nearest anchor that still has row capacity. Micro-clusters are placed in
// order of decreasing assignment confidence (gap between their best and
// second-best anchor), so the contested ones — which any shard suits about
// equally — are the ones redirected when a popular anchor fills up. A
// cluster finding every shard full lands on the least-loaded one. Every
// step breaks ties on the lowest index, so the assignment is deterministic
// at any worker count.
func assignBalanced(shardOf []int, micro *kmeans.Result, anchors *Matrix, nRows, nShards int) {
	k1 := len(shardOf)
	sizes := make([]int, k1)
	for _, l := range micro.Labels {
		sizes[l]++
	}
	dists := make([][]float32, k1)
	margin := make([]float32, k1)
	for c := 0; c < k1; c++ {
		d := make([]float32, nShards)
		best, second := float32(0), float32(0)
		for s := 0; s < nShards; s++ {
			d[s] = vec.L2Sqr(micro.Centroids.Row(c), anchors.Row(s))
			switch {
			case s == 0:
				best, second = d[s], d[s]
			case d[s] < best:
				best, second = d[s], best
			case s == 1 || d[s] < second:
				second = d[s]
			}
		}
		dists[c] = d
		margin[c] = second - best
	}
	order := make([]int, k1)
	for c := range order {
		order[c] = c
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if margin[a] != margin[b] {
			return margin[a] > margin[b]
		}
		return a < b
	})
	capacity := (nRows*routeSlackNum + routeSlackDen*nShards - 1) / (routeSlackDen * nShards)
	load := make([]int, nShards)
	for _, c := range order {
		best := -1
		for s := 0; s < nShards; s++ {
			if load[s]+sizes[c] > capacity {
				continue
			}
			if best < 0 || dists[c][s] < dists[c][best] {
				best = s
			}
		}
		if best < 0 {
			for s := 0; s < nShards; s++ {
				if best < 0 || load[s] < load[best] {
					best = s
				}
			}
		}
		shardOf[c] = best
		load[best] += sizes[c]
	}
}

// buildRouted is Build's WithRouting path: coarse-partition the data into
// spatially coherent shards, build one sub-index per shard over the
// reordered parent matrix, then compute each shard's routing centroids.
// Exactly one of data (float32) and u8 (uint8) is non-nil; on the uint8
// path the partition and centroid passes run over transient widened views
// — bytes are exact in float32, so the partition, graphs and centroids are
// bit-identical to the float32 build of the same values — while the
// reordered parent stays bytes. External ids are preserved through
// per-shard id maps: result id i always names row i of the matrix the
// caller passed to Build.
func buildRouted(ctx context.Context, data *Matrix, u8 *vec.U8Matrix, cfg config, nShards int) (*Index, error) {
	wide := data
	if u8 != nil {
		// Transient full widened copy for the partition k-means only; it is
		// garbage before the per-shard graph builds start.
		wide = u8.Widen()
	}
	groups, err := routePartition(wide, cfg, nShards)
	if err != nil {
		return nil, err
	}
	var parent *Matrix
	var parentU8 *vec.U8Matrix
	if u8 != nil {
		parentU8 = vec.NewU8Matrix(u8.N, u8.Dim)
	} else {
		parent = NewMatrix(data.N, data.Dim)
	}
	wide = nil
	idmaps := make([][]int32, nShards)
	bases := make([]int32, nShards)
	sizes := make([]int, nShards)
	row := 0
	for s, g := range groups {
		ids := make([]int32, len(g))
		for i, src := range g {
			if u8 != nil {
				copy(parentU8.Row(row), u8.Row(src))
			} else {
				copy(parent.Row(row), data.Row(src))
			}
			ids[i] = checked.Int32(src)
			row++
		}
		idmaps[s] = ids
		bases[s] = ids[0]
		sizes[s] = len(g)
	}

	shardCfg := cfg
	shardCfg.shards = 0
	shardCfg.progress = nil
	var progressFor func(s int) func(stage string, done, total int)
	if cfg.progress != nil {
		tau := cfg.resolvedTau()
		progress := cfg.progress
		progressFor = func(s int) func(stage string, done, total int) {
			return func(stage string, done, _ int) {
				progress(stage, s*tau+done, nShards*tau)
			}
		}
	}
	shards, graphTime, err := buildShardLoop(ctx, parent, parentU8, shardCfg, sizes, progressFor)
	if err != nil {
		return nil, err
	}

	dim := 0
	cents := make([]*Matrix, nShards)
	lo := 0
	for s, sz := range sizes {
		var view *Matrix
		if parentU8 != nil {
			view = shardViewU8(parentU8, lo, lo+sz).Widen()
			dim = parentU8.Dim
		} else {
			view = shardView(parent, lo, lo+sz)
			dim = parent.Dim
		}
		m, err := router.BuildShard(view, cfg.routing,
			routingSeed(cfg.seed, 0, s), cfg.workers)
		if err != nil {
			return nil, fmt.Errorf("gkmeans: routing centroids for shard %d: %w", s, err)
		}
		cents[s] = m
		lo += sz
	}
	route, err := router.New(cfg.routing, dim, cents)
	if err != nil {
		return nil, fmt.Errorf("gkmeans: assembling shard router: %w", err)
	}

	return &Index{
		data:      parent,
		u8:        parentU8,
		shards:    shards,
		shardBase: bases,
		shardIDs:  idmaps,
		route:     route,
		probes:    &probeStats{},
		graphTime: graphTime,
		cfg:       cfg,
	}, nil
}
