package gkmeans

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
)

// buildTestIndex constructs a small deterministic index shared by several
// tests.
func buildTestIndex(t *testing.T, opts ...Option) (*Index, *Matrix) {
	t.Helper()
	all := dataset.SIFTLike(1040, 21)
	data, queries := Split(all, 40)
	opts = append([]Option{WithKappa(10), WithXi(25), WithTau(5), WithSeed(22)}, opts...)
	idx, err := Build(context.Background(), data, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return idx, queries
}

func TestBuildProducesWorkingIndex(t *testing.T) {
	idx, queries := buildTestIndex(t)
	if idx.N() != 1000 || idx.Dim() != 128 {
		t.Fatalf("index shape %d×%d", idx.N(), idx.Dim())
	}
	if idx.Graph() == nil || idx.Graph().N() != idx.N() {
		t.Fatal("index graph missing or mis-sized")
	}
	if idx.GraphTime() <= 0 {
		t.Fatal("graph time not recorded")
	}
	if idx.Clusters() != nil {
		t.Fatal("no clustering requested, Clusters should be nil")
	}
	res := idx.Search(queries.Row(0), 5, 64)
	if len(res) != 5 {
		t.Fatalf("search returned %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Dist > res[i].Dist {
			t.Fatal("search results not sorted")
		}
	}
	// Self-query: a data point must find itself at distance 0.
	self := idx.Search(idx.Data().Row(7), 1, 32)
	if len(self) != 1 || self[0].ID != 7 || self[0].Dist != 0 {
		t.Fatalf("self query returned %v", self)
	}
}

func TestBuildWorkerCountInvariant(t *testing.T) {
	// WithWorkers trades wall-clock only: for both builders the same seed
	// yields the bit-identical graph at every worker count.
	data := dataset.SIFTLike(500, 31)
	for _, builder := range []string{BuilderGKMeans, BuilderNNDescent} {
		var ref *Graph
		for _, workers := range []int{1, 4, 0} { // 0 = GOMAXPROCS
			idx, err := Build(context.Background(), data,
				WithKappa(8), WithXi(20), WithTau(3), WithSeed(5),
				WithWorkers(workers), WithGraphBuilder(builder))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", builder, workers, err)
			}
			g := idx.Graph()
			if ref == nil {
				ref = g
				continue
			}
			for i := range ref.Lists {
				if len(g.Lists[i]) != len(ref.Lists[i]) {
					t.Fatalf("%s workers=%d node %d list length differs", builder, workers, i)
				}
				for j := range ref.Lists[i] {
					if g.Lists[i][j] != ref.Lists[i][j] {
						t.Fatalf("%s workers=%d node %d entry %d differs", builder, workers, i, j)
					}
				}
			}
		}
	}
}

func TestBuildNNDescentBuilderEndToEnd(t *testing.T) {
	all := dataset.SIFTLike(540, 17)
	data, queries := Split(all, 40)
	idx, err := Build(context.Background(), data,
		WithKappa(10), WithSeed(9), WithGraphBuilder(BuilderNNDescent))
	if err != nil {
		t.Fatal(err)
	}
	truth := ExactNeighbors(data, queries, 5)
	hits, total := 0, 0
	for qi := 0; qi < queries.N; qi++ {
		res := idx.Search(queries.Row(qi), 5, 64)
		got := map[int32]bool{}
		for _, nb := range res {
			got[nb.ID] = true
		}
		for _, id := range truth[qi] {
			total++
			if got[id] {
				hits++
			}
		}
	}
	if recall := float64(hits) / float64(total); recall < 0.8 {
		t.Fatalf("KGraph-built index recall %.3f, want >= 0.8", recall)
	}
	if _, err := Build(context.Background(), data, WithGraphBuilder("nosuch")); err == nil {
		t.Fatal("unknown builder accepted")
	}
}

func TestConcurrentBuildsRace(t *testing.T) {
	// Hammer Build on separate Index values over a shared read-only
	// dataset — the determinism satellite's race test (CI runs it with
	// -race). Both builders participate.
	data := dataset.SIFTLike(400, 41)
	var wg sync.WaitGroup
	idxs := make([]*Index, 8)
	errs := make([]error, 8)
	for i := range idxs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			builder := BuilderGKMeans
			if i%2 == 1 {
				builder = BuilderNNDescent
			}
			// (builder, seed) repeats with period 4, so idxs[i] and
			// idxs[i+4] run identical configurations concurrently.
			idxs[i], errs[i] = Build(context.Background(), data,
				WithKappa(6), WithXi(20), WithTau(3), WithSeed(int64((i%4)/2)),
				WithWorkers(2), WithGraphBuilder(builder))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
		if got := idxs[i].Search(data.Row(3), 3, 32); len(got) != 3 {
			t.Fatalf("build %d produced a broken index", i)
		}
	}
	// Same (builder, seed) pairs must agree even when built concurrently.
	for i := 4; i < 8; i++ {
		a, b := idxs[i-4].Graph(), idxs[i].Graph()
		for v := range a.Lists {
			for j := range a.Lists[v] {
				if a.Lists[v][j] != b.Lists[v][j] {
					t.Fatalf("concurrent same-seed builds %d and %d diverged", i-4, i)
				}
			}
		}
	}
}

func TestBuildWithClusters(t *testing.T) {
	data := dataset.GloVeLike(600, 23)
	idx, err := Build(context.Background(), data,
		WithKappa(8), WithXi(20), WithTau(4), WithSeed(24), WithMaxIter(15), WithClusters(12))
	if err != nil {
		t.Fatal(err)
	}
	res := idx.Clusters()
	if res == nil {
		t.Fatal("WithClusters should populate Clusters")
	}
	if res.K != 12 {
		t.Fatalf("K=%d, want 12", res.K)
	}
	if err := res.Validate(data); err != nil {
		t.Fatal(err)
	}
}

func TestIndexClusterMatchesLegacyWrapper(t *testing.T) {
	// The deprecated wrappers are thin shims over the Index API; same
	// inputs must give byte-identical clusterings.
	data := dataset.SIFTLike(800, 25)
	opt := Options{Kappa: 10, Xi: 25, Tau: 4, MaxIter: 15, Seed: 26}
	legacy, err := Cluster(data, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(context.Background(), data, opt.asOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	modern, err := idx.Cluster(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy.Labels {
		if legacy.Labels[i] != modern.Labels[i] {
			t.Fatalf("label %d differs: legacy %d, index %d", i, legacy.Labels[i], modern.Labels[i])
		}
	}
	if !legacy.Centroids.Equal(modern.Centroids) {
		t.Fatal("centroids differ between legacy wrapper and Index API")
	}
}

func TestIndexConcurrentSearchRace(t *testing.T) {
	// Hammer one Index from many goroutines mixing Search, SearchBatch and
	// Cluster. Run under -race this is the concurrency acceptance test; the
	// assertions double-check that concurrent use returns the same results
	// as serial use.
	idx, queries := buildTestIndex(t)
	want := make([][]Neighbor, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		want[qi] = idx.Search(queries.Row(qi), 5, 64)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0: // single searches
				for rep := 0; rep < 3; rep++ {
					for qi := 0; qi < queries.N; qi++ {
						got := idx.Search(queries.Row(qi), 5, 64)
						for j := range got {
							if got[j] != want[qi][j] {
								errc <- errors.New("concurrent Search diverged from serial result")
								return
							}
						}
					}
				}
			case 1: // batch searches
				for rep := 0; rep < 3; rep++ {
					batch := idx.SearchBatch(queries, 5, 64)
					for qi := range batch {
						for j := range batch[qi] {
							if batch[qi][j] != want[qi][j] {
								errc <- errors.New("concurrent SearchBatch diverged from serial result")
								return
							}
						}
					}
				}
			case 2: // concurrent clustering on the same index
				if _, err := idx.Cluster(context.Background(), 15, WithMaxIter(5)); err != nil {
					errc <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	data := dataset.GloVeLike(700, 27)
	queries := dataset.GloVeLike(30, 28)
	idx, err := Build(context.Background(), data,
		WithKappa(8), WithXi(20), WithTau(4), WithSeed(29),
		WithMaxIter(10), WithClusters(10), WithEntryPoints(24))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "test.gkx")
	if err := SaveIndex(path, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}

	if !loaded.Data().Equal(idx.Data()) {
		t.Fatal("dataset did not survive the round trip")
	}
	if loaded.Graph().N() != idx.Graph().N() || loaded.Graph().Kappa != idx.Graph().Kappa {
		t.Fatal("graph shape did not survive the round trip")
	}
	for i, list := range idx.Graph().Lists {
		got := loaded.Graph().Lists[i]
		if len(got) != len(list) {
			t.Fatalf("node %d list length differs", i)
		}
		for j := range list {
			if got[j] != list[j] {
				t.Fatalf("node %d neighbour %d differs", i, j)
			}
		}
	}

	// The clustering section round-trips.
	if loaded.Clusters() == nil {
		t.Fatal("clustering lost in round trip")
	}
	if loaded.Clusters().K != idx.Clusters().K {
		t.Fatal("cluster count lost in round trip")
	}
	for i := range idx.Clusters().Labels {
		if loaded.Clusters().Labels[i] != idx.Clusters().Labels[i] {
			t.Fatalf("label %d lost in round trip", i)
		}
	}
	if !loaded.Clusters().Centroids.Equal(idx.Clusters().Centroids) {
		t.Fatal("centroids lost in round trip")
	}

	// The acceptance criterion: searches on the loaded index return exactly
	// the results of the saved one.
	for qi := 0; qi < queries.N; qi++ {
		a := idx.Search(queries.Row(qi), 10, 64)
		b := loaded.Search(queries.Row(qi), 10, 64)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d result %d differs after round trip: %v vs %v", qi, j, a[j], b[j])
			}
		}
	}
}

func TestIndexWriteToReadFromStream(t *testing.T) {
	// WriteTo/ReadIndexFrom must work mid-stream: surround the index with
	// unrelated bytes and check nothing before or after is disturbed.
	idx, _ := buildTestIndex(t)
	var buf bytes.Buffer
	buf.WriteString("prefix")
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()-len("prefix")) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len()-len("prefix"))
	}
	buf.WriteString("suffix")

	r := bytes.NewReader(buf.Bytes())
	pre := make([]byte, len("prefix"))
	if _, err := r.Read(pre); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndexFrom(r)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != idx.N() {
		t.Fatal("stream round trip lost samples")
	}
	rest := make([]byte, 16)
	m, _ := r.Read(rest)
	if string(rest[:m]) != "suffix" {
		t.Fatalf("reader position wrong after ReadIndexFrom: %q", rest[:m])
	}
}

func TestReadIndexFromRejectsCorruptHeader(t *testing.T) {
	if _, err := ReadIndexFrom(bytes.NewReader([]byte("not an index at all"))); err == nil {
		t.Fatal("garbage input should fail")
	}
	idx, _ := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // bump the version field
	if _, err := ReadIndexFrom(bytes.NewReader(b)); err == nil {
		t.Fatal("unsupported version should fail")
	}
}

func TestBuildCancellation(t *testing.T) {
	data := dataset.SIFTLike(500, 31)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Build must abort before doing real work
	if _, err := Build(ctx, data, WithKappa(8), WithTau(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Build returned %v, want context.Canceled", err)
	}
}

func TestClusterCancellation(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.Cluster(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Cluster returned %v, want context.Canceled", err)
	}
}

func TestProgressCallback(t *testing.T) {
	data := dataset.Uniform(400, 8, 33)
	var mu sync.Mutex
	counts := map[string]int{}
	var lastTotal map[string]int
	lastTotal = map[string]int{}
	_, err := Build(context.Background(), data,
		WithKappa(6), WithXi(20), WithTau(4), WithMaxIter(8), WithClusters(10),
		WithProgress(func(stage string, done, total int) {
			mu.Lock()
			counts[stage]++
			lastTotal[stage] = total
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if counts["graph"] != 4 || lastTotal["graph"] != 4 {
		t.Fatalf("graph progress: %d calls, total %d; want 4/4", counts["graph"], lastTotal["graph"])
	}
	if counts["cluster"] == 0 || lastTotal["cluster"] != 8 {
		t.Fatalf("cluster progress: %d calls, total %d; want >0 calls with total 8",
			counts["cluster"], lastTotal["cluster"])
	}
}

func TestNewIndexErrors(t *testing.T) {
	data := dataset.Uniform(50, 4, 35)
	g, err := BuildGraph(data, Options{Kappa: 5, Xi: 15, Tau: 2, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIndex(nil, g); err == nil {
		t.Fatal("nil data should error")
	}
	if _, err := NewIndex(data, nil); err == nil {
		t.Fatal("nil graph should error")
	}
	other := dataset.Uniform(20, 4, 37)
	if _, err := NewIndex(other, g); err == nil {
		t.Fatal("size mismatch should error")
	}
	if _, err := Build(context.Background(), nil); err == nil {
		t.Fatal("Build with nil data should error")
	}
	// A graph with an out-of-range neighbour id must be rejected at
	// construction, not panic inside the first search.
	bad := knngraph.New(data.N, 3)
	bad.Insert(0, int32(data.N+5), 1)
	if _, err := NewIndex(data, bad); err == nil {
		t.Fatal("malformed graph should error")
	}
}

func TestIndexSearchDefaultEf(t *testing.T) {
	idx, queries := buildTestIndex(t)
	res := idx.Search(queries.Row(0), 5, 0) // ef <= 0 picks a sane default
	if len(res) != 5 {
		t.Fatalf("default-ef search returned %d results", len(res))
	}
	batch := idx.SearchBatch(queries, 3, 0)
	if len(batch) != queries.N {
		t.Fatalf("default-ef batch returned %d lists", len(batch))
	}
}
