module gkmeans

go 1.24
