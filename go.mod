module gkmeans

go 1.23
