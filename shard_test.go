package gkmeans

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"gkmeans/internal/dataset"
)

// buildShardedIndex is the shared fixture: a sharded index plus the
// unsharded reference over the same data and options.
func buildShardedIndex(t *testing.T, data *Matrix, nShards int, opts ...Option) *Index {
	t.Helper()
	idx, err := Build(context.Background(), data,
		append([]Option{WithShards(nShards)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestClampShards(t *testing.T) {
	cases := []struct{ requested, n, want int }{
		{0, 100, 1}, {1, 100, 1}, {-3, 100, 1},
		{4, 100, 4}, {50, 100, 50}, {51, 100, 50}, {1000, 100, 50},
		{2, 3, 1}, {2, 4, 2}, {3, 5, 2},
	}
	for _, c := range cases {
		if got := clampShards(c.requested, c.n); got != c.want {
			t.Errorf("clampShards(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestShardBoundsCoverContiguously(t *testing.T) {
	for _, c := range []struct{ total, n int }{{4, 1000}, {3, 1001}, {7, 103}} {
		prev := 0
		for s := 0; s < c.total; s++ {
			lo, hi := shardBounds(s, c.total, c.n)
			if lo != prev || hi <= lo {
				t.Fatalf("shardBounds(%d, %d, %d) = [%d,%d), prev end %d", s, c.total, c.n, lo, hi, prev)
			}
			prev = hi
		}
		if prev != c.n {
			t.Fatalf("%d shards over %d rows end at %d", c.total, c.n, prev)
		}
	}
}

// A sharded build must report its shape, share the dataset storage with the
// parent matrix (views, not copies) and refuse clustering.
func TestShardedBuildShape(t *testing.T) {
	data := dataset.SIFTLike(400, 7)
	idx := buildShardedIndex(t, data, 4, WithKappa(6), WithTau(3), WithSeed(7))

	if !idx.Sharded() || idx.Shards() != 4 {
		t.Fatalf("Sharded=%v Shards=%d, want true/4", idx.Sharded(), idx.Shards())
	}
	if idx.N() != data.N || idx.Dim() != data.Dim {
		t.Fatalf("sharded index shape %d×%d, want %d×%d", idx.N(), idx.Dim(), data.N, data.Dim)
	}
	if idx.Graph() != nil {
		t.Fatal("sharded index reports a global graph")
	}
	rows := 0
	for s, shard := range idx.shards {
		if shard.Sharded() {
			t.Fatalf("shard %d is itself sharded", s)
		}
		if &shard.Data().Data[0] != &data.Data[rows*data.Dim] {
			t.Fatalf("shard %d dataset is a copy, want a view at row %d", s, rows)
		}
		rows += shard.N()
	}
	if rows != data.N {
		t.Fatalf("shards cover %d rows, want %d", rows, data.N)
	}

	if _, err := idx.Cluster(context.Background(), 4); err == nil {
		t.Fatal("Cluster on a sharded index did not error")
	}
	if _, err := Build(context.Background(), data, WithShards(2), WithClusters(4)); err == nil {
		t.Fatal("WithShards + WithClusters did not error")
	}
}

// WithShards(1) and a too-small dataset must fall back to the monolithic
// path, clustering included.
func TestShardsOneIsMonolithic(t *testing.T) {
	data := dataset.GloVeLike(60, 3)
	idx, err := Build(context.Background(), data,
		WithShards(1), WithKappa(5), WithTau(2), WithSeed(3), WithClusters(3))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Sharded() || idx.Shards() != 1 || idx.Graph() == nil || idx.Clusters() == nil {
		t.Fatalf("WithShards(1) built Sharded=%v Shards=%d", idx.Sharded(), idx.Shards())
	}
}

// Fan-out search must return globally correct results: every id a shard
// search would find locally, remapped into the global id space, merged by
// distance. Cross-check against brute force on an easy corpus.
func TestShardedSearchMatchesExactOnEasyData(t *testing.T) {
	all := dataset.SIFTLike(1200, 11)
	data, queries := Split(all, 60)
	idx := buildShardedIndex(t, data, 3, WithKappa(10), WithTau(6), WithSeed(11))

	truth := ExactNeighbors(data, queries, 10)
	recall := idx.Recall(queries, truth, 10, 256)
	if recall < 0.95 {
		t.Fatalf("sharded recall@10 = %.3f, want >= 0.95 at ef=256", recall)
	}

	// Results must be sorted, within range and deduplicated.
	for qi := 0; qi < queries.N; qi++ {
		res := idx.Search(queries.Row(qi), 10, 64)
		if len(res) != 10 {
			t.Fatalf("query %d returned %d results", qi, len(res))
		}
		seen := map[int32]bool{}
		for i, nb := range res {
			if nb.ID < 0 || int(nb.ID) >= data.N {
				t.Fatalf("query %d result %d id %d out of range", qi, i, nb.ID)
			}
			if seen[nb.ID] {
				t.Fatalf("query %d returned duplicate id %d", qi, nb.ID)
			}
			seen[nb.ID] = true
			if i > 0 && res[i-1].Dist > nb.Dist {
				t.Fatalf("query %d results not sorted at %d", qi, i)
			}
		}
	}
}

// Sharded recall must track unsharded recall on the same data: every shard
// is searched with the full ef budget, so the merged results stay at least
// as good up to small-graph navigation noise. (At production scale the
// sharded index typically wins outright — smaller graphs plus shard-count
// times the entry points — which the gkbench -shards grid records.)
func TestShardedRecallParity(t *testing.T) {
	all := dataset.SIFTLike(3000, 5)
	data, queries := Split(all, 150)
	opts := []Option{WithKappa(20), WithTau(6), WithSeed(5)}

	mono, err := Build(context.Background(), data, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sharded := buildShardedIndex(t, data, 4, opts...)

	truth := ExactNeighbors(data, queries, 10)
	rm := mono.Recall(queries, truth, 10, 128)
	rs := sharded.Recall(queries, truth, 10, 128)
	t.Logf("recall@10: monolithic %.3f, sharded %.3f", rm, rs)
	if rs < rm-0.01 {
		t.Fatalf("sharded recall %.3f more than 0.01 below monolithic %.3f", rs, rm)
	}
}

// The acceptance determinism property: WithShards(n) + a fixed seed must
// yield identical merged results — and identical persisted bytes — at any
// worker count, for Search and SearchBatch alike.
func TestShardedDeterministicAcrossWorkerCounts(t *testing.T) {
	all := dataset.GloVeLike(900, 17)
	data, queries := Split(all, 40)

	type snapshot struct {
		blob    []byte
		single  [][]Neighbor
		batched [][]Neighbor
	}
	build := func(workers int) snapshot {
		idx := buildShardedIndex(t, data, 3,
			WithKappa(8), WithTau(4), WithSeed(17), WithWorkers(workers))
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		snap := snapshot{blob: buf.Bytes(), batched: idx.SearchBatch(queries, 5, 32)}
		for qi := 0; qi < queries.N; qi++ {
			snap.single = append(snap.single, idx.Search(queries.Row(qi), 5, 32))
		}
		return snap
	}

	ref := build(1)
	for _, workers := range []int{2, 4, 0} {
		got := build(workers)
		if !bytes.Equal(ref.blob, got.blob) {
			t.Fatalf("workers=%d produced different persisted bytes than workers=1", workers)
		}
		for qi := range ref.single {
			assertSameNeighbors(t, fmt.Sprintf("workers=%d query %d (single)", workers, qi),
				ref.single[qi], got.single[qi])
			assertSameNeighbors(t, fmt.Sprintf("workers=%d query %d (batch)", workers, qi),
				ref.batched[qi], got.batched[qi])
		}
	}
	// Single and batch must agree with each other too.
	for qi := range ref.single {
		assertSameNeighbors(t, fmt.Sprintf("query %d single vs batch", qi), ref.single[qi], ref.batched[qi])
	}
}

func assertSameNeighbors(t *testing.T, where string, a, b []Neighbor) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", where, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: result %d differs: %+v vs %+v", where, i, a[i], b[i])
		}
	}
}

// SearchStats on a sharded index: the logical query count must not be
// multiplied by the shard count, while the work counters aggregate across
// every shard.
func TestShardedSearchStats(t *testing.T) {
	data := dataset.SIFTLike(300, 9)
	idx := buildShardedIndex(t, data, 3, WithKappa(6), WithTau(3), WithSeed(9))

	if st := idx.SearchStats(); st != (SearchStats{}) {
		t.Fatalf("stats before first search: %+v", st)
	}
	const nq = 7
	for i := 0; i < nq; i++ {
		idx.Search(data.Row(i), 3, 16)
	}
	st := idx.SearchStats()
	if st.Queries != nq {
		t.Fatalf("Queries = %d, want %d (not shard-multiplied)", st.Queries, nq)
	}
	if st.DistanceComps == 0 || st.ExpandedCandidates == 0 {
		t.Fatalf("work counters empty: %+v", st)
	}
	var shardDist uint64
	for _, shard := range idx.shards {
		shardDist += shard.SearchStats().DistanceComps
	}
	if st.DistanceComps != shardDist {
		t.Fatalf("DistanceComps = %d, shard sum %d", st.DistanceComps, shardDist)
	}
}

// A sharded index must survive a Save/Load round-trip bit-identically:
// same shape, same persisted bytes when re-saved, same search results.
func TestShardedPersistRoundTrip(t *testing.T) {
	all := dataset.SIFTLike(800, 23)
	data, queries := Split(all, 30)
	idx := buildShardedIndex(t, data, 4, WithKappa(8), WithTau(4), WithSeed(23), WithEntryPoints(8))

	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndexFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Sharded() || loaded.Shards() != idx.Shards() {
		t.Fatalf("loaded Shards = %d, want %d", loaded.Shards(), idx.Shards())
	}
	if loaded.N() != idx.N() || loaded.Dim() != idx.Dim() {
		t.Fatalf("loaded shape %d×%d, want %d×%d", loaded.N(), loaded.Dim(), idx.N(), idx.Dim())
	}
	var again bytes.Buffer
	if _, err := loaded.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-saving the loaded index produced different bytes")
	}
	for qi := 0; qi < queries.N; qi++ {
		assertSameNeighbors(t, fmt.Sprintf("query %d", qi),
			idx.Search(queries.Row(qi), 5, 64), loaded.Search(queries.Row(qi), 5, 64))
	}
}

// The WithShards+WithClusters conflict must error even when the dataset is
// so small that the shard count would clamp to 1 (the documented contract
// does not depend on dataset size).
func TestShardsWithClustersErrorsEvenWhenClamped(t *testing.T) {
	data := dataset.GloVeLike(3, 1) // clampShards(2, 3) == 1
	if _, err := Build(context.Background(), data, WithShards(2), WithClusters(2)); err == nil {
		t.Fatal("WithShards + WithClusters accepted on a clamp-to-1 dataset")
	}
}

// mergeShardResults is a pure k-way merge over already-remapped parts:
// equal distances across shard boundaries must break ties by ascending
// global id, and a topK beyond the surviving candidates returns them all.
func TestMergeShardResultsTiesAcrossShards(t *testing.T) {
	parts := [][]Neighbor{
		{{ID: 10, Dist: 1.0}, {ID: 12, Dist: 2.0}},
		{{ID: 3, Dist: 1.0}, {ID: 5, Dist: 2.0}},
		{{ID: 7, Dist: 1.0}},
	}
	got := mergeShardResults(parts, 4)
	want := []Neighbor{{ID: 3, Dist: 1.0}, {ID: 7, Dist: 1.0}, {ID: 10, Dist: 1.0}, {ID: 5, Dist: 2.0}}
	assertSameNeighbors(t, "equal-distance ties across shards", got, want)

	// Order of the parts must not matter: the merge sorts globally.
	reversed := [][]Neighbor{parts[2], parts[1], parts[0]}
	assertSameNeighbors(t, "part order independence", mergeShardResults(reversed, 4), want)
}

func TestMergeShardResultsTopKBeyondCandidates(t *testing.T) {
	parts := [][]Neighbor{
		{{ID: 4, Dist: 0.5}},
		nil,
		{{ID: 1, Dist: 0.25}},
	}
	got := mergeShardResults(parts, 10)
	want := []Neighbor{{ID: 1, Dist: 0.25}, {ID: 4, Dist: 0.5}}
	assertSameNeighbors(t, "topK larger than surviving candidates", got, want)

	if res := mergeShardResults(nil, 3); len(res) != 0 {
		t.Fatalf("merge of no parts returned %d results", len(res))
	}
	if res := mergeShardResults([][]Neighbor{nil, nil}, 3); len(res) != 0 {
		t.Fatalf("merge of empty parts returned %d results", len(res))
	}
}
