package gkmeans

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"gkmeans/internal/anns"
	"gkmeans/internal/bkm"
	"gkmeans/internal/core"
	"gkmeans/internal/dataset"
	"gkmeans/internal/knngraph"
	"gkmeans/internal/metrics"
	"gkmeans/internal/vec"
)

// Matrix is an n×d row-major matrix of float32 samples.
type Matrix = vec.Matrix

// Graph is an approximate k-nearest-neighbour graph: one bounded, sorted
// neighbour list per sample.
type Graph = knngraph.Graph

// Neighbor is one entry of a neighbour list or a search result: a sample id
// and its squared Euclidean distance.
type Neighbor = knngraph.Neighbor

// Searcher answers approximate nearest-neighbour queries over a dataset and
// its k-NN graph. Safe for concurrent use.
//
// Deprecated: use Index.Search / Index.SearchBatch, which bundle the
// dataset and graph and expose the same search core.
type Searcher = anns.Searcher

// NewMatrix allocates a zeroed n×d matrix.
func NewMatrix(n, d int) *Matrix { return vec.NewMatrix(n, d) }

// FromRows builds a matrix by copying equally sized rows.
func FromRows(rows [][]float32) *Matrix { return vec.FromRows(rows) }

// LoadFvecs reads up to maxN vectors from an fvecs file (the exchange
// format of SIFT1M/GIST1M and friends); maxN <= 0 reads everything.
func LoadFvecs(path string, maxN int) (*Matrix, error) {
	return dataset.LoadFvecsFile(path, maxN)
}

// SaveFvecs writes a matrix to an fvecs file.
func SaveFvecs(path string, m *Matrix) error { return dataset.SaveFvecsFile(path, m) }

// LoadBvecs reads up to maxN vectors from a bvecs file (the byte-vector
// format of SIFT1B), widening each byte to float32; maxN <= 0 reads
// everything.
func LoadBvecs(path string, maxN int) (*Matrix, error) {
	return dataset.LoadBvecsFile(path, maxN)
}

// LoadVectors reads up to maxN vectors from an fvecs or bvecs file,
// dispatching on the file extension (".bvecs" selects the byte format,
// anything else the float format). It is the loader behind every file-fed
// tool in this repository.
func LoadVectors(path string, maxN int) (*Matrix, error) {
	if strings.EqualFold(filepath.Ext(path), ".bvecs") {
		return LoadBvecs(path, maxN)
	}
	return LoadFvecs(path, maxN)
}

// Options tunes the GK-means pipeline. The zero value reproduces the
// paper's standard configuration (§4.4): κ=50, ξ=50, τ=10.
//
// Deprecated: use the functional options (WithKappa, WithTau, …) accepted
// by Build, NewIndex and Index.Cluster.
type Options struct {
	// Kappa is the number of graph neighbours per sample (κ). Larger
	// values raise clustering quality and cost. Default 50.
	Kappa int
	// Xi is the refinement cluster size used while building the graph (ξ).
	// Recommended range 40–100. Default 50.
	Xi int
	// Tau is the number of graph construction rounds (τ). 10 suffices for
	// clustering; up to 32 pays off when the graph is reused for ANN
	// search. Default 10.
	Tau int
	// MaxIter caps the clustering optimisation epochs. Default 50; the run
	// stops earlier at the first epoch with no accepted move.
	MaxIter int
	// Seed makes the whole pipeline deterministic.
	Seed int64
	// Trace records per-epoch distortion history in the result.
	Trace bool
	// Traditional switches the optimisation step from boost k-means moves
	// to nearest-centroid moves (the paper's GK-means− ablation; lower
	// quality, same speed).
	Traditional bool
	// Workers bounds parallelism during graph construction; <=0 uses
	// GOMAXPROCS.
	Workers int
}

// asOptions translates a legacy Options value into the functional options
// consumed by the Index API; zero fields pass through and pick up the same
// downstream defaults they always had.
func (o Options) asOptions() []Option {
	opts := []Option{
		WithKappa(o.Kappa), WithXi(o.Xi), WithTau(o.Tau),
		WithSeed(o.Seed), WithWorkers(o.Workers), WithMaxIter(o.MaxIter),
	}
	if o.Trace {
		opts = append(opts, WithTrace())
	}
	if o.Traditional {
		opts = append(opts, WithTraditional())
	}
	return opts
}

// IterStat is one entry of a traced clustering history.
type IterStat struct {
	Iter       int
	Distortion float64
	Moves      int
	Elapsed    time.Duration
}

// Result is the outcome of a clustering run.
type Result struct {
	// Labels assigns every sample a cluster id in [0,K).
	Labels []int
	// Centroids is the K×d centroid matrix.
	Centroids *Matrix
	// K is the number of clusters.
	K int
	// Iters is the number of optimisation epochs executed.
	Iters int
	// AvgCandidates is the mean number of distinct candidate clusters each
	// sample examined per epoch — the quantity the paper shows is ≪ k.
	AvgCandidates float64
	// Graph is the k-NN graph used (and, for Cluster, built); reuse it
	// with ClusterWithGraph or NewSearcher.
	Graph *Graph
	// GraphTime, InitTime and IterTime break down the wall clock:
	// graph construction, 2M-tree initialisation, optimisation epochs.
	GraphTime, InitTime, IterTime time.Duration
	// History is the per-epoch trace (only when Options.Trace).
	History []IterStat
}

// Distortion returns the average distortion (mean squared sample-to-
// centroid distance, the paper's Eqn. 4) of the result on its data.
func (r *Result) Distortion(data *Matrix) float64 {
	return metrics.AverageDistortion(data, r.Labels, r.Centroids)
}

func fromCore(res *core.Result, g *Graph, graphTime time.Duration) *Result {
	out := &Result{
		Labels:        res.Labels,
		Centroids:     res.Centroids,
		K:             res.K,
		Iters:         res.Iters,
		AvgCandidates: res.AvgCandidates,
		Graph:         g,
		GraphTime:     graphTime,
		InitTime:      res.InitTime,
		IterTime:      res.IterTime,
	}
	for _, h := range res.History {
		out.History = append(out.History, IterStat(h))
	}
	return out
}

// Cluster runs the complete GK-means pipeline on data: it builds the
// approximate k-NN graph (Alg. 3) and then clusters into k clusters with
// graph-supported boost k-means (Alg. 2).
//
// Deprecated: use Build with WithClusters, or Build followed by
// Index.Cluster, which add cancellation, progress reporting and an index
// that is reusable for search and persistence.
func Cluster(data *Matrix, k int, opt Options) (*Result, error) {
	idx, err := Build(context.Background(), data, opt.asOptions()...)
	if err != nil {
		return nil, err
	}
	res, err := idx.Cluster(context.Background(), k)
	if err != nil {
		return nil, err
	}
	res.GraphTime = idx.GraphTime()
	return res, nil
}

// BuildGraph constructs the approximate k-NN graph alone (Alg. 3). Build it
// once and reuse it across ClusterWithGraph calls and searchers.
//
// Deprecated: use Build and keep the returned Index; its graph is available
// from Index.Graph.
func BuildGraph(data *Matrix, opt Options) (*Graph, error) {
	idx, err := Build(context.Background(), data, opt.asOptions()...)
	if err != nil {
		return nil, err
	}
	return idx.Graph(), nil
}

// ClusterWithGraph clusters data into k clusters supported by an existing
// graph (Alg. 2). The graph may come from BuildGraph or any other source
// covering the same samples.
//
// Deprecated: use NewIndex to wrap the graph, then Index.Cluster.
func ClusterWithGraph(data *Matrix, k int, g *Graph, opt Options) (*Result, error) {
	idx, err := NewIndex(data, g, opt.asOptions()...)
	if err != nil {
		return nil, err
	}
	return idx.Cluster(context.Background(), k)
}

// BoostKMeans runs exhaustive boost k-means (no graph pruning) — the
// paper's highest-quality reference configuration. O(n·k·d) per epoch;
// use it as the quality yardstick at moderate k.
func BoostKMeans(data *Matrix, k int, opt Options) (*Result, error) {
	res, err := bkm.Cluster(data, bkm.Config{
		K: k, MaxIter: opt.MaxIter, Seed: opt.Seed, Trace: opt.Trace,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Labels: res.Labels, Centroids: res.Centroids, K: res.K,
		Iters: res.Iters, InitTime: res.InitTime, IterTime: res.IterTime,
	}
	for _, h := range res.History {
		out.History = append(out.History, IterStat(h))
	}
	return out, nil
}

// NewSearcher builds an approximate nearest-neighbour searcher over data
// and its graph. entries sets the number of search entry points (<=0
// selects 16; raise it for data with many well-separated clusters).
//
// Deprecated: use NewIndex (with WithEntryPoints) and Index.Search.
func NewSearcher(data *Matrix, g *Graph, entries int) (*Searcher, error) {
	return anns.NewSearcher(data, g, entries)
}

// ExactNeighbors computes exact top-k neighbour ids for each query by brute
// force — ground truth for recall measurements. The scan runs on all
// available cores.
func ExactNeighbors(data, queries *Matrix, k int) [][]int32 {
	return anns.ExactTruth(data, queries, k, 0)
}

// SearchBatch answers every query concurrently (workers <= 0 selects
// GOMAXPROCS) and returns one sorted result list per query.
//
// Deprecated: use Index.SearchBatch.
func SearchBatch(s *Searcher, queries *Matrix, topK, ef, workers int) [][]Neighbor {
	return anns.BatchSearch(s, queries, topK, ef, workers)
}

// Split partitions a matrix into a reference set and an evenly strided
// held-out query set — the standard way to derive an in-distribution ANN
// query set from one corpus.
func Split(m *Matrix, nQueries int) (data, queries *Matrix) {
	return dataset.Split(m, nQueries)
}

// Distortion computes the average distortion of an arbitrary labelling
// (centroids are recomputed from the labels).
func Distortion(data *Matrix, labels []int, k int) float64 {
	return metrics.DistortionFromLabels(data, labels, k)
}

// Validate checks that a result is structurally consistent with a dataset:
// non-nil labels with one in-range label per sample, and a non-nil K×d
// centroid matrix matching the data's dimensionality.
func (r *Result) Validate(data *Matrix) error {
	if r.Labels == nil {
		return fmt.Errorf("gkmeans: result has nil labels")
	}
	if len(r.Labels) != data.N {
		return fmt.Errorf("gkmeans: %d labels for %d samples", len(r.Labels), data.N)
	}
	if r.K <= 0 {
		return fmt.Errorf("gkmeans: invalid cluster count K=%d", r.K)
	}
	for i, l := range r.Labels {
		if l < 0 || l >= r.K {
			return fmt.Errorf("gkmeans: label %d of sample %d out of range [0,%d)", l, i, r.K)
		}
	}
	if r.Centroids == nil {
		return fmt.Errorf("gkmeans: result has nil centroids")
	}
	if r.Centroids.N != r.K {
		return fmt.Errorf("gkmeans: %d centroid rows for K=%d clusters", r.Centroids.N, r.K)
	}
	if r.Centroids.Dim != data.Dim {
		return fmt.Errorf("gkmeans: centroid dimensionality %d, data dimensionality %d",
			r.Centroids.Dim, data.Dim)
	}
	return nil
}
